//! Content-keyed mapping / II-table cache.
//!
//! Compiling a kernel — baseline mapping, constrained mapping, and the
//! PageMaster transform at every halving-chain budget — is the expensive
//! step of both figure sweeps, and the grids revisit identical
//! `(kernel, fabric, options)` configurations constantly. This cache
//! computes each [`KernelProfile`] **once per process** and optionally
//! persists it to `target/mapcache/*.json` so later runs skip the mapper
//! entirely.
//!
//! ## Keying and invalidation
//!
//! An entry is keyed by the *content* of everything that determines the
//! result:
//!
//! * the kernel's structural fingerprint ([`cgra_dfg::Dfg::fingerprint`]
//!   — name, ops, edges; a kernel edit changes the key),
//! * the fabric geometry (`dim`, `page_size`),
//! * the mapper option fingerprint ([`cgra_mapper::MapOptions::fingerprint`]
//!   — any knob change, including the search seed, changes the key),
//! * a format version ([`SCHEMA`]), bumped whenever the mapper or
//!   transform *algorithms* change meaning — the one hazard content
//!   keys cannot see. Bump it in the same commit as such a change.
//!
//! Stale, corrupt, truncated or unreadable disk entries are never
//! errors: the profile recomputes and the entry is rewritten. Delete
//! `target/mapcache/` (or pass `--no-cache`) to force a cold run.
//!
//! ## Concurrency
//!
//! Reads go through an `RwLock`ed map of per-key `OnceLock` cells:
//! many sweep workers can hit the cache concurrently, and when several
//! miss the same key at once exactly one computes while the rest block
//! on the cell — no duplicated mapper work, no torn disk writes (files
//! are written to a temp name and renamed into place).

use crate::jsonio::Json;
use cgra_arch::CgraConfig;
use cgra_dfg::Dfg;
use cgra_mapper::MapOptions;
use cgra_obs::Tracer;
use cgra_sim::{KernelLibrary, KernelProfile};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// On-disk format version. Bump when mapper/transform semantics change
/// in ways a content key cannot capture; old entries are then ignored.
pub const SCHEMA: u32 = 1;

/// Cache-hit counters (all monotone; read with [`MapCache::stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Served from memory.
    pub mem_hits: u64,
    /// Served from a valid disk entry.
    pub disk_hits: u64,
    /// Computed from scratch.
    pub misses: u64,
    /// Disk entries that existed but were rejected (corrupt, stale
    /// schema, key mismatch) and recomputed.
    pub disk_rejects: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    kernel: String,
    dfg_fp: u64,
    dim: u16,
    page_size: usize,
    opts_fp: u64,
}

impl Key {
    /// Stable digest used in the cache file name.
    fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.kernel.as_bytes());
        eat(&self.dfg_fp.to_le_bytes());
        eat(&self.dim.to_le_bytes());
        eat(&(self.page_size as u64).to_le_bytes());
        eat(&self.opts_fp.to_le_bytes());
        h
    }

    fn file_name(&self) -> String {
        format!(
            "profile-{}-{}x{}-p{}-{:016x}.json",
            self.kernel,
            self.dim,
            self.dim,
            self.page_size,
            self.digest()
        )
    }
}

type Cell = Arc<OnceLock<Arc<KernelProfile>>>;
type LibCell = Arc<OnceLock<Arc<KernelLibrary>>>;

/// Process-wide cache of compiled kernel profiles and libraries.
pub struct MapCache {
    profiles: RwLock<HashMap<Key, Cell>>,
    libraries: RwLock<HashMap<(u16, usize, u64), LibCell>>,
    /// `None` = memory only; `Some(dir)` = also read/write JSON entries.
    disk_dir: Option<PathBuf>,
    /// When false, every lookup recomputes and nothing is stored — the
    /// `--no-cache` mode, and the uncached arm of the determinism test.
    enabled: bool,
    /// Receives mapper/transform events for every *compilation* (memory
    /// and disk hits emit nothing — the search they would describe never
    /// ran). Each profile's events are forwarded as one contiguous batch,
    /// so traces stay segment-ordered even under concurrent misses.
    tracer: Tracer,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    disk_rejects: AtomicU64,
}

impl std::fmt::Debug for MapCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapCache")
            .field("disk_dir", &self.disk_dir)
            .field("enabled", &self.enabled)
            .field("stats", &self.stats())
            .finish()
    }
}

impl MapCache {
    fn with(disk_dir: Option<PathBuf>, enabled: bool) -> Self {
        MapCache {
            profiles: RwLock::new(HashMap::new()),
            libraries: RwLock::new(HashMap::new()),
            disk_dir,
            enabled,
            tracer: Tracer::off(),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_rejects: AtomicU64::new(0),
        }
    }

    /// Memory-only cache (the default for tests and library use).
    pub fn in_memory() -> Self {
        Self::with(None, true)
    }

    /// Cache persisted under `dir` (created on first write).
    pub fn persistent_at(dir: impl Into<PathBuf>) -> Self {
        Self::with(Some(dir.into()), true)
    }

    /// Cache persisted at the default location: `$CGRA_MAPCACHE_DIR` if
    /// set, else `target/mapcache` relative to the working directory.
    pub fn persistent() -> Self {
        let dir = std::env::var_os("CGRA_MAPCACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/mapcache"));
        Self::persistent_at(dir)
    }

    /// A cache that never caches: every call recomputes (`--no-cache`).
    pub fn disabled() -> Self {
        Self::with(None, false)
    }

    /// Emit mapper/transform events for every compilation to `tracer`.
    /// Cache hits (memory or disk) emit nothing: the events describe a
    /// search, and a hit means no search ran.
    pub fn traced(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_rejects: self.disk_rejects.load(Ordering::Relaxed),
        }
    }

    /// The compiled profile for `dfg` on a `dim × dim` fabric with
    /// `page_size`-PE pages under `opts` — computed at most once per
    /// process per key.
    ///
    /// # Panics
    /// Panics if the kernel fails to map (same contract as
    /// [`KernelProfile::compile`]'s callers in the sweeps: the benchmark
    /// suite is expected to map on every grid fabric).
    pub fn profile(&self, dfg: &Dfg, cgra: &CgraConfig, opts: &MapOptions) -> Arc<KernelProfile> {
        let dim = mesh_dim(cgra);
        let key = Key {
            kernel: dfg.name.clone(),
            dfg_fp: dfg.fingerprint(),
            dim,
            page_size: cgra.layout().shape().size(),
            opts_fp: opts.fingerprint(),
        };
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(compile(dfg, cgra, opts, &self.tracer));
        }
        let cell = self.cell(&key);
        if let Some(hit) = cell.get() {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        cell.get_or_init(|| {
            if let Some(profile) = self.load(&key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::new(profile);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            let profile = compile(dfg, cgra, opts, &self.tracer);
            self.store(&key, &profile);
            Arc::new(profile)
        })
        .clone()
    }

    /// The full benchmark library for a fabric, assembled from (and
    /// sharing) the per-kernel profile cache.
    pub fn library(&self, cgra: &CgraConfig, opts: &MapOptions) -> Arc<KernelLibrary> {
        let build = || {
            let profiles = cgra_dfg::kernels::all()
                .iter()
                .map(|k| (*self.profile(k, cgra, opts)).clone())
                .collect();
            Arc::new(KernelLibrary {
                profiles,
                num_pages: cgra.layout().num_pages() as u16,
            })
        };
        if !self.enabled {
            return build();
        }
        let key = (
            mesh_dim(cgra),
            cgra.layout().shape().size(),
            opts.fingerprint(),
        );
        let cell = {
            let read = self.libraries.read().expect("library lock");
            read.get(&key).cloned()
        }
        .unwrap_or_else(|| {
            self.libraries
                .write()
                .expect("library lock")
                .entry(key)
                .or_default()
                .clone()
        });
        cell.get_or_init(build).clone()
    }

    fn cell(&self, key: &Key) -> Cell {
        if let Some(cell) = self.profiles.read().expect("profile lock").get(key) {
            return cell.clone();
        }
        self.profiles
            .write()
            .expect("profile lock")
            .entry(key.clone())
            .or_default()
            .clone()
    }

    /// Best-effort disk read; any failure (missing, corrupt, stale) is a
    /// miss, never an error.
    fn load(&self, key: &Key) -> Option<KernelProfile> {
        let dir = self.disk_dir.as_ref()?;
        let path = dir.join(key.file_name());
        let text = std::fs::read_to_string(&path).ok()?;
        match parse_entry(&text, key) {
            Some(profile) => Some(profile),
            None => {
                self.disk_rejects.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Best-effort atomic disk write (temp file + rename); failures are
    /// reported on stderr and otherwise ignored.
    fn store(&self, key: &Key, profile: &KernelProfile) {
        let Some(dir) = self.disk_dir.as_ref() else {
            return;
        };
        if let Err(e) = write_entry(dir, key, profile) {
            eprintln!("mapcache: could not persist {}: {e}", key.file_name());
        }
    }
}

impl Default for MapCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

fn compile(dfg: &Dfg, cgra: &CgraConfig, opts: &MapOptions, tracer: &Tracer) -> KernelProfile {
    // Batched so concurrent misses interleave at whole-profile
    // granularity in a shared sink, never event-by-event.
    tracer.batched(|t| {
        KernelProfile::compile_traced(dfg, cgra, opts, t)
            .unwrap_or_else(|e| panic!("profile {} on {:?}: {e}", dfg.name, cgra))
    })
}

fn mesh_dim(cgra: &CgraConfig) -> u16 {
    // All fabrics in this crate are square; recover the side length.
    (cgra.num_pes() as f64).sqrt().round() as u16
}

fn u64_json(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn u64_from(j: Option<&Json>) -> Option<u64> {
    u64::from_str_radix(j?.as_str()?, 16).ok()
}

fn write_entry(dir: &Path, key: &Key, profile: &KernelProfile) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let doc = Json::obj([
        ("schema", Json::Int(SCHEMA as i64)),
        ("kernel", Json::Str(key.kernel.clone())),
        ("dfg_fp", u64_json(key.dfg_fp)),
        ("dim", Json::Int(key.dim as i64)),
        ("page_size", Json::Int(key.page_size as i64)),
        ("opts_fp", u64_json(key.opts_fp)),
        ("profile", profile_to_json(profile)),
    ]);
    let path = dir.join(key.file_name());
    let tmp = dir.join(format!(".{}.tmp-{}", key.file_name(), std::process::id()));
    std::fs::write(&tmp, doc.pretty())?;
    std::fs::rename(&tmp, &path)
}

fn parse_entry(text: &str, key: &Key) -> Option<KernelProfile> {
    let doc = Json::parse(text).ok()?;
    // Every key component must match; a mismatch means a digest
    // collision or a hand-edited file — reject either way.
    (doc.get("schema")?.as_int()? == SCHEMA as i64).then_some(())?;
    (doc.get("kernel")?.as_str()? == key.kernel).then_some(())?;
    (u64_from(doc.get("dfg_fp"))? == key.dfg_fp).then_some(())?;
    (doc.get("dim")?.as_int()? == key.dim as i64).then_some(())?;
    (doc.get("page_size")?.as_int()? == key.page_size as i64).then_some(())?;
    (u64_from(doc.get("opts_fp"))? == key.opts_fp).then_some(())?;
    let profile = profile_from_json(doc.get("profile")?)?;
    // Key match only proves the entry is *for* this request; the profile
    // itself may still have been corrupted on disk. Re-derive its
    // invariants before trusting it.
    let n = (key.dim as usize * key.dim as usize / key.page_size) as u16;
    let report = cgra_analyze::analyze_profile(
        &profile.name,
        profile.ii_baseline,
        profile.ii_constrained,
        profile.used_pages,
        &profile.ii_by_pages,
        n,
    );
    (!report.has_errors()).then_some(profile)
}

/// Explicit JSON encoding of a [`KernelProfile`] (the workspace `serde`
/// is an offline marker shim — see `crates/serde`).
pub fn profile_to_json(p: &KernelProfile) -> Json {
    Json::obj([
        ("name", Json::Str(p.name.clone())),
        ("ii_baseline", Json::Int(p.ii_baseline as i64)),
        ("ii_constrained", Json::Int(p.ii_constrained as i64)),
        ("used_pages", Json::Int(p.used_pages as i64)),
        (
            "ii_by_pages",
            Json::Arr(
                p.ii_by_pages
                    .iter()
                    .map(|&(m, ii)| Json::Arr(vec![Json::Int(m as i64), Json::Int(ii as i64)]))
                    .collect(),
            ),
        ),
    ])
}

/// Inverse of [`profile_to_json`]; `None` on any shape or range error.
pub fn profile_from_json(j: &Json) -> Option<KernelProfile> {
    let int = |name: &str| j.get(name)?.as_int();
    let ii_by_pages = j
        .get("ii_by_pages")?
        .as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            Some((
                u16::try_from(pair[0].as_int()?).ok()?,
                u32::try_from(pair[1].as_int()?).ok()?,
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(KernelProfile {
        name: j.get("name")?.as_str()?.to_string(),
        ii_baseline: u32::try_from(int("ii_baseline")?).ok()?,
        ii_constrained: u32::try_from(int("ii_constrained")?).ok()?,
        used_pages: u16::try_from(int("used_pages")?).ok()?,
        ii_by_pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libcache::cgra;

    fn sample_profile() -> KernelProfile {
        KernelProfile {
            name: "k".into(),
            ii_baseline: 2,
            ii_constrained: 3,
            used_pages: 2,
            ii_by_pages: vec![(4, 3), (2, 5), (1, 9)],
        }
    }

    #[test]
    fn profile_json_round_trip() {
        let p = sample_profile();
        assert_eq!(profile_from_json(&profile_to_json(&p)), Some(p));
    }

    #[test]
    fn memory_cache_computes_once() {
        let cache = MapCache::in_memory();
        let fabric = cgra(4, 4);
        let opts = MapOptions::default();
        let k = cgra_dfg::kernels::mpeg2();
        let a = cache.profile(&k, &fabric, &opts);
        let b = cache.profile(&k, &fabric, &opts);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.misses, s.mem_hits), (1, 1));
    }

    #[test]
    fn disabled_cache_always_recomputes_identically() {
        let cache = MapCache::disabled();
        let fabric = cgra(4, 4);
        let opts = MapOptions::default();
        let k = cgra_dfg::kernels::sor();
        let a = cache.profile(&k, &fabric, &opts);
        let b = cache.profile(&k, &fabric, &opts);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b, "mapping must be deterministic");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn disk_round_trip_and_corruption_fallback() {
        let dir = std::env::temp_dir().join(format!("mapcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fabric = cgra(4, 4);
        let opts = MapOptions::default();
        let k = cgra_dfg::kernels::fir();

        let first = MapCache::persistent_at(&dir);
        let computed = first.profile(&k, &fabric, &opts);
        assert_eq!(first.stats().misses, 1);

        // A fresh cache instance must serve the same profile from disk.
        let second = MapCache::persistent_at(&dir);
        let loaded = second.profile(&k, &fabric, &opts);
        assert_eq!(*computed, *loaded);
        assert_eq!(second.stats().disk_hits, 1);
        assert_eq!(second.stats().misses, 0);

        // Corrupt every entry: the cache must recompute, not error.
        for entry in std::fs::read_dir(&dir).unwrap() {
            std::fs::write(entry.unwrap().path(), "{not json").unwrap();
        }
        let third = MapCache::persistent_at(&dir);
        let recomputed = third.profile(&k, &fabric, &opts);
        assert_eq!(*computed, *recomputed);
        let s = third.stats();
        assert_eq!((s.misses, s.disk_rejects), (1, 1));

        // And the rewrite healed the entry.
        let fourth = MapCache::persistent_at(&dir);
        fourth.profile(&k, &fabric, &opts);
        assert_eq!(fourth.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_from_a_crashed_writer_is_rejected_and_recomputed() {
        // The crash-safety contract: entries are written to a temp name
        // and renamed into place, so a visible entry is either whole or
        // absent. This test models the failure the contract defends
        // against — a file cut off mid-write — and checks the read path
        // treats it as a miss, not an error, even with a stale temp file
        // from the dead writer still sitting in the directory.
        let dir = std::env::temp_dir().join(format!("mapcache-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fabric = cgra(4, 4);
        let opts = MapOptions::default();
        let k = cgra_dfg::kernels::fir();

        let first = MapCache::persistent_at(&dir);
        let computed = first.profile(&k, &fabric, &opts);

        // Truncate every entry mid-file and plant a stale temp file, as
        // a writer killed between `write` and `rename` would leave.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.len() > 16, "entry must be long enough to truncate");
            std::fs::write(&path, &text[..text.len() / 2]).unwrap();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            std::fs::write(dir.join(format!(".{name}.tmp-0")), &text[..8]).unwrap();
        }

        // The sweep must recompute, not fail.
        let second = MapCache::persistent_at(&dir);
        let recomputed = second.profile(&k, &fabric, &opts);
        assert_eq!(*computed, *recomputed);
        let s = second.stats();
        assert_eq!((s.misses, s.disk_rejects), (1, 1));

        // The recompute healed the entry in place; the stale temp file
        // is inert (it is never a cache key) and must not be served.
        let third = MapCache::persistent_at(&dir);
        assert_eq!(*computed, *third.profile(&k, &fabric, &opts));
        assert_eq!(third.stats().disk_hits, 1);
        assert_eq!(third.stats().disk_rejects, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn semantically_corrupt_entry_is_rejected_by_the_analyzer() {
        // Well-formed JSON with matching key fields, but a profile whose
        // numbers an analyzer pass can prove wrong: only the semantic
        // check in `parse_entry` can catch this.
        let dir = std::env::temp_dir().join(format!("mapcache-sem-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fabric = cgra(4, 4);
        let opts = MapOptions::default();
        let k = cgra_dfg::kernels::fir();

        let first = MapCache::persistent_at(&dir);
        let computed = first.profile(&k, &fabric, &opts);

        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let text = std::fs::read_to_string(&path).unwrap();
            // 99 used pages on a 4-page fabric — A405 on load.
            let broken = text.replace(
                &format!("\"used_pages\": {}", computed.used_pages),
                "\"used_pages\": 99",
            );
            assert_ne!(broken, text, "corruption must actually hit the entry");
            std::fs::write(&path, broken).unwrap();
        }

        let second = MapCache::persistent_at(&dir);
        let recomputed = second.profile(&k, &fabric, &opts);
        assert_eq!(*computed, *recomputed);
        let s = second.stats();
        assert_eq!((s.misses, s.disk_rejects), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn library_shares_profile_cache() {
        let cache = MapCache::in_memory();
        let fabric = cgra(4, 4);
        let opts = MapOptions::default();
        // Warm one kernel's profile, then build the library: only the
        // remaining kernels should be misses.
        cache.profile(&cgra_dfg::kernels::mpeg2(), &fabric, &opts);
        let lib = cache.library(&fabric, &opts);
        assert_eq!(lib.len(), cgra_dfg::kernels::all().len());
        assert_eq!(cache.stats().misses, lib.len() as u64);
        // Same Arc on the second library request.
        assert!(Arc::ptr_eq(&lib, &cache.library(&fabric, &opts)));
    }

    #[test]
    fn different_opts_are_different_entries() {
        let cache = MapCache::in_memory();
        let fabric = cgra(4, 4);
        let k = cgra_dfg::kernels::sobel();
        cache.profile(&k, &fabric, &MapOptions::default());
        cache.profile(&k, &fabric, &MapOptions::fast());
        assert_eq!(cache.stats().misses, 2);
    }
}
