//! A minimal wall-clock benchmark harness for the `benches/` targets.
//!
//! The build environment is offline, so `criterion` is unavailable; the
//! bench targets (`harness = false`) use this instead. It is deliberately
//! small: warm up, sample until a time budget is met, report min / median
//! / mean. Good enough to compare orders of magnitude and track gross
//! regressions, not a statistics package.
//!
//! Filtering works like libtest: `cargo bench -p cgra-bench -- fig8`
//! runs only benchmarks whose name contains `fig8`.

use std::time::{Duration, Instant};

/// The harness: construct once per bench binary with [`Bench::from_env`],
/// then call [`Bench::run`] for each benchmark.
#[derive(Debug)]
pub struct Bench {
    filter: Option<String>,
    min_time: Duration,
    max_iters: usize,
}

impl Bench {
    /// A harness configured from the command line: the first
    /// non-flag argument is a substring filter on benchmark names.
    pub fn from_env() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench {
            filter,
            min_time: Duration::from_millis(200),
            max_iters: 200,
        }
    }

    /// Override the per-benchmark sampling time budget.
    pub fn with_min_time(mut self, min_time: Duration) -> Self {
        self.min_time = min_time;
        self
    }

    /// Override the per-benchmark iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters.max(1);
        self
    }

    /// Time `f`, printing one summary line. Skipped (silently) when a
    /// filter is active and `name` does not contain it.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // One untimed warm-up pass (first-touch allocation, caches).
        std::hint::black_box(f());
        let mut samples: Vec<Duration> = Vec::new();
        let budget = Instant::now();
        while samples.len() < self.max_iters {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed());
            if budget.elapsed() >= self.min_time && samples.len() >= 5 {
                break;
            }
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "bench {name:<42} {:>5} iters   min {:>11}   median {:>11}   mean {:>11}",
            samples.len(),
            fmt(min),
            fmt(median),
            fmt(mean),
        );
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_respects_iteration_cap() {
        let bench = Bench {
            filter: None,
            min_time: Duration::ZERO,
            max_iters: 7,
        };
        let mut calls = 0u32;
        bench.run("counting", || calls += 1);
        // Warm-up + at most max_iters timed passes, at least 5 samples.
        assert!((6..=8).contains(&calls), "calls = {calls}");
    }

    #[test]
    fn filter_skips_non_matching() {
        let bench = Bench {
            filter: Some("match-me".into()),
            min_time: Duration::ZERO,
            max_iters: 3,
        };
        let mut calls = 0u32;
        bench.run("other", || calls += 1);
        assert_eq!(calls, 0);
        bench.run("does-match-me-yes", || calls += 1);
        assert!(calls > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt(Duration::from_micros(150)), "150.0 µs");
        assert_eq!(fmt(Duration::from_millis(25)), "25.0 ms");
        assert_eq!(fmt(Duration::from_secs(12)), "12.00 s");
    }
}
