//! # cgra-bench — the paper's evaluation, regenerated
//!
//! Harness functions for every figure in the paper's evaluation section
//! (§VII), shared by the `fig8`, `fig9` and `report` binaries and the
//! in-repo benches:
//!
//! * [`engine`] — the parallel sweep engine (`--jobs N`), with the
//!   byte-identical-output determinism contract.
//! * [`fig8`] — Figure 8(a–c): per-kernel performance of the
//!   paging-constrained mapping relative to the unconstrained baseline,
//!   for each CGRA size and page size.
//! * [`fig9`] — Figure 9(a–c): system-level improvement of the
//!   multithreaded CGRA over the single-threaded FCFS baseline, for each
//!   thread count, CGRA need, page size, and CGRA size.
//! * [`mapcache`] — content-keyed mapping / II-table cache, optionally
//!   persisted to `target/mapcache` (`--no-cache` disables it).
//! * [`libcache`] — compiled kernel-library facade over the map cache.
//! * [`lint`] — the `cgra-lint` pipeline linter over `cgra-analyze`
//!   (also behind the figure binaries' `--analyze` flag).
//! * [`jsonio`] — dependency-free JSON codec backing the disk cache
//!   (re-exported from `cgra-obs`, which also uses it for JSONL traces).
//! * [`microbench`] — minimal wall-clock benchmark harness for the
//!   `benches/` targets.
//! * [`obsflags`] — `--trace <path>` / `--metrics` flag handling shared
//!   by the figure binaries (JSONL traces, folded metrics).
//! * [`table`] — plain-text/markdown table rendering.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod fig8;
pub mod fig9;
pub use cgra_obs::jsonio;
pub mod libcache;
pub mod lint;
pub mod mapcache;
pub mod microbench;
pub mod obsflags;
pub mod table;

/// The paper's experimental grid: `(dimension, page sizes)` per §VII-A.
/// The 6×6 "8 PE" point is substituted with 3×3 pages (9 PEs) — 8 does
/// not divide 36 (DESIGN.md, substitution 4). The paper skips 8-PE pages
/// on the 4×4 for Fig. 9 ("not enough multithreading potential") but maps
/// them in Fig. 8; we keep the point in both and let the data show it.
pub const GRID: [(u16, &[usize]); 3] = [(4, &[2, 4, 8]), (6, &[2, 4, 9]), (8, &[2, 4, 8])];

/// Thread counts of Fig. 9.
pub const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Seeds averaged per Fig. 9 point.
pub const DEFAULT_SEEDS: u64 = 5;
