//! Kernel-library compilation cache — the historical facade over the
//! content-keyed [`crate::mapcache::MapCache`].
//!
//! Compiling the 11-kernel library (baseline + constrained mappings +
//! all transforms) takes a second or two per fabric configuration; the
//! Fig. 9 sweep reuses each library across needs × thread counts × seeds,
//! and Fig. 8 shares the same per-kernel profiles. `LibCache` keeps the
//! `(dim, page_size)`-keyed API the sweeps and tests always used, while
//! delegating storage, de-duplication and optional disk persistence to
//! `MapCache`.

use crate::engine::EngineConfig;
use crate::mapcache::MapCache;
use cgra_arch::CgraConfig;
use cgra_mapper::MapOptions;
use cgra_obs::Tracer;
use cgra_sim::KernelLibrary;
use std::sync::Arc;

/// Build (or panic on mapper failure for) the fabric `dim × dim` with the
/// given page size.
pub fn cgra(dim: u16, page_size: usize) -> CgraConfig {
    CgraConfig::square(dim)
        .with_page_size(page_size)
        .unwrap_or_else(|e| panic!("{dim}x{dim} page {page_size}: {e}"))
}

/// A process-wide cache of compiled kernel libraries keyed by
/// `(dim, page_size)`, compiled under [`MapOptions::default`].
#[derive(Debug, Default)]
pub struct LibCache {
    inner: MapCache,
}

impl LibCache {
    /// An empty, memory-only cache (the default for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache over an explicitly configured [`MapCache`].
    pub fn over(inner: MapCache) -> Self {
        LibCache { inner }
    }

    /// The cache matching a sweep configuration: persistent under
    /// `target/mapcache` normally, recompute-everything when the user
    /// passed `--no-cache`.
    pub fn for_config(cfg: EngineConfig) -> Self {
        Self::for_config_traced(cfg, Tracer::off())
    }

    /// [`for_config`](Self::for_config) with compilations emitted to
    /// `tracer` (cache hits emit nothing — see
    /// [`MapCache::traced`](crate::mapcache::MapCache::traced)).
    pub fn for_config_traced(cfg: EngineConfig, tracer: Tracer) -> Self {
        if cfg.use_cache {
            Self::over(MapCache::persistent().traced(tracer))
        } else {
            Self::over(MapCache::disabled().traced(tracer))
        }
    }

    /// Get or compile the library for a configuration. Concurrent misses
    /// on the same key compile once; the rest share the result.
    pub fn get(&self, dim: u16, page_size: usize) -> Arc<KernelLibrary> {
        self.inner
            .library(&cgra(dim, page_size), &MapOptions::default())
    }

    /// The underlying content-keyed cache (per-kernel profile access,
    /// statistics).
    pub fn map_cache(&self) -> &MapCache {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_same_arc() {
        let cache = LibCache::new();
        let a = cache.get(4, 4);
        let b = cache.get(4, 4);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn no_cache_config_recomputes() {
        let cache = LibCache::for_config(EngineConfig {
            jobs: 1,
            use_cache: false,
        });
        let a = cache.get(4, 4);
        let b = cache.get(4, 4);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b, "library compilation must be deterministic");
    }
}
