//! Kernel-library compilation cache.
//!
//! Compiling the 11-kernel library (baseline + constrained mappings +
//! all transforms) takes a second or two per fabric configuration; the
//! Fig. 9 sweep reuses each library across needs × thread counts × seeds.

use cgra_arch::CgraConfig;
use cgra_mapper::MapOptions;
use cgra_sim::KernelLibrary;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Build (or panic on mapper failure for) the fabric `dim × dim` with the
/// given page size.
pub fn cgra(dim: u16, page_size: usize) -> CgraConfig {
    CgraConfig::square(dim)
        .with_page_size(page_size)
        .unwrap_or_else(|e| panic!("{dim}x{dim} page {page_size}: {e}"))
}

/// A process-wide cache of compiled kernel libraries keyed by
/// `(dim, page_size)`.
#[derive(Default)]
pub struct LibCache {
    inner: Mutex<HashMap<(u16, usize), Arc<KernelLibrary>>>,
}

impl LibCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or compile the library for a configuration.
    pub fn get(&self, dim: u16, page_size: usize) -> Arc<KernelLibrary> {
        if let Some(lib) = self.inner.lock().get(&(dim, page_size)) {
            return lib.clone();
        }
        // Compile outside the lock (rayon threads may race; last write
        // wins, both values identical because compilation is
        // deterministic).
        let lib = Arc::new(
            KernelLibrary::compile_benchmarks(&cgra(dim, page_size), &MapOptions::default())
                .unwrap_or_else(|e| panic!("library {dim}x{dim}/p{page_size}: {e}")),
        );
        self.inner
            .lock()
            .entry((dim, page_size))
            .or_insert(lib)
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_same_arc() {
        let cache = LibCache::new();
        let a = cache.get(4, 4);
        let b = cache.get(4, 4);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
