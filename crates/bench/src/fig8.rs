//! Figure 8 — performance impact of the paging constraints.
//!
//! "We first take a set of benchmarks and map them to a CGRA using an
//! unmodified compiler to determine a baseline II_b. We then modify the
//! compiler to follow our compile time constraints and compare this II to
//! the baseline II_b." Performance = `100 · II_b / II_c` (%); 100 means
//! identical performance, below 100 is a slowdown.

use crate::libcache::cgra;
use cgra_mapper::{map_baseline, map_constrained, map_constrained_strict, MapOptions};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One bar of Figure 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Point {
    /// CGRA dimension (4, 6 or 8).
    pub dim: u16,
    /// Page size in PEs.
    pub page_size: usize,
    /// Kernel name.
    pub kernel: String,
    /// Unconstrained (baseline) II.
    pub ii_baseline: u32,
    /// Paging-constrained II.
    pub ii_constrained: u32,
}

impl Fig8Point {
    /// `100 · II_b / II_c` — the y-axis of Fig. 8.
    pub fn performance_pct(&self) -> f64 {
        100.0 * self.ii_baseline as f64 / self.ii_constrained as f64
    }
}

/// Run the Fig. 8 sweep for one `(dim, page_size)` sub-figure.
pub fn run_config(dim: u16, page_size: usize) -> Vec<Fig8Point> {
    let fabric = cgra(dim, page_size);
    let opts = MapOptions::default();
    cgra_dfg::kernels::all()
        .par_iter()
        .map(|k| {
            let base = map_baseline(k, &fabric, &opts)
                .unwrap_or_else(|e| panic!("baseline {}: {e}", k.name));
            let cons = map_constrained(k, &fabric, &opts)
                .unwrap_or_else(|e| panic!("constrained {}: {e}", k.name));
            Fig8Point {
                dim,
                page_size,
                kernel: k.name.clone(),
                ii_baseline: base.ii(),
                ii_constrained: cons.ii(),
            }
        })
        .collect()
}

/// Ablation: the strict 1-step discipline (Algorithm 1's input form)
/// against the default stable-column discipline, on one fabric. Returns
/// `(kernel, ii_stable, Option<ii_strict>)` — `None` when the kernel does
/// not fit under strict rules.
pub fn strict_ablation(dim: u16, page_size: usize) -> Vec<(String, u32, Option<u32>)> {
    let fabric = cgra(dim, page_size);
    let opts = MapOptions::default();
    cgra_dfg::kernels::all()
        .par_iter()
        .map(|k| {
            let stable = map_constrained(k, &fabric, &opts)
                .unwrap_or_else(|e| panic!("stable {}: {e}", k.name));
            let strict = map_constrained_strict(k, &fabric, &opts).ok();
            (k.name.clone(), stable.ii(), strict.map(|r| r.ii()))
        })
        .collect()
}

/// Run the complete Fig. 8 grid (all sub-figures).
pub fn run_all() -> Vec<Fig8Point> {
    let configs: Vec<(u16, usize)> = crate::GRID
        .iter()
        .flat_map(|&(dim, sizes)| sizes.iter().map(move |&s| (dim, s)))
        .collect();
    configs
        .par_iter()
        .flat_map(|&(dim, s)| run_config(dim, s))
        .collect()
}

/// Geometric-mean performance per `(dim, page_size)` — the summary rows
/// EXPERIMENTS.md tracks.
pub fn summary(points: &[Fig8Point]) -> Vec<(u16, usize, f64)> {
    let mut keys: Vec<(u16, usize)> = points.iter().map(|p| (p.dim, p.page_size)).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter()
        .map(|(dim, s)| {
            let perf: Vec<f64> = points
                .iter()
                .filter(|p| p.dim == dim && p.page_size == s)
                .map(|p| p.performance_pct())
                .collect();
            let gm = (perf.iter().map(|x| x.ln()).sum::<f64>() / perf.len() as f64).exp();
            (dim, s, gm)
        })
        .collect()
}

/// Render one sub-figure as a table (kernels × performance%).
pub fn render(points: &[Fig8Point], dim: u16) -> String {
    let sizes: Vec<usize> = {
        let mut v: Vec<usize> = points
            .iter()
            .filter(|p| p.dim == dim)
            .map(|p| p.page_size)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut headers = vec!["kernel".to_string()];
    for s in &sizes {
        headers.push(format!("page {s} perf%"));
        headers.push(format!("II {s} (b/c)"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for name in cgra_dfg::kernels::NAMES {
        let mut row = vec![name.to_string()];
        for &s in &sizes {
            if let Some(p) = points
                .iter()
                .find(|p| p.dim == dim && p.page_size == s && p.kernel == name)
            {
                row.push(format!("{:.0}", p.performance_pct()));
                row.push(format!("{}/{}", p.ii_baseline, p.ii_constrained));
            } else {
                row.push("-".into());
                row.push("-".into());
            }
        }
        rows.push(row);
    }
    crate::table::markdown(&header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_4x4_page4_shape() {
        let points = run_config(4, 4);
        assert_eq!(points.len(), 11);
        for p in &points {
            assert!(p.ii_constrained >= p.ii_baseline, "{}", p.kernel);
            assert!(p.performance_pct() <= 100.0 + 1e-9);
            assert!(p.performance_pct() >= 25.0, "{} too degraded", p.kernel);
        }
    }

    #[test]
    fn larger_pages_do_not_hurt() {
        // Page size 8 on the 4x4 (2 pages) should be nearly lossless.
        let p8 = run_config(4, 8);
        let gm = summary(&p8)[0].2;
        assert!(gm > 85.0, "geomean {gm:.1}% at page size 8");
    }

    #[test]
    fn render_contains_all_kernels() {
        let points = run_config(4, 4);
        let s = render(&points, 4);
        for name in cgra_dfg::kernels::NAMES {
            assert!(s.contains(name));
        }
    }
}
