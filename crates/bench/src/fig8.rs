//! Figure 8 — performance impact of the paging constraints.
//!
//! "We first take a set of benchmarks and map them to a CGRA using an
//! unmodified compiler to determine a baseline II_b. We then modify the
//! compiler to follow our compile time constraints and compare this II to
//! the baseline II_b." Performance = `100 · II_b / II_c` (%); 100 means
//! identical performance, below 100 is a slowdown.
//!
//! Execution goes through the sweep [`Engine`] at `(dim, page_size,
//! kernel)` granularity, and both IIs come from the content-keyed
//! [`MapCache`] — the same per-kernel profiles the Fig. 9 simulations
//! consume, so a combined report compiles each kernel exactly once.

use crate::engine::Engine;
use crate::libcache::cgra;
use crate::mapcache::MapCache;
use cgra_mapper::{map_constrained_strict, MapOptions};
use serde::{Deserialize, Serialize};

/// One bar of Figure 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Point {
    /// CGRA dimension (4, 6 or 8).
    pub dim: u16,
    /// Page size in PEs.
    pub page_size: usize,
    /// Kernel name.
    pub kernel: String,
    /// Unconstrained (baseline) II.
    pub ii_baseline: u32,
    /// Paging-constrained II.
    pub ii_constrained: u32,
}

impl Fig8Point {
    /// `100 · II_b / II_c` — the y-axis of Fig. 8.
    pub fn performance_pct(&self) -> f64 {
        100.0 * self.ii_baseline as f64 / self.ii_constrained as f64
    }
}

fn point(cache: &MapCache, dim: u16, page_size: usize, kernel: &cgra_dfg::Dfg) -> Fig8Point {
    let fabric = cgra(dim, page_size);
    let profile = cache.profile(kernel, &fabric, &MapOptions::default());
    Fig8Point {
        dim,
        page_size,
        kernel: profile.name.clone(),
        ii_baseline: profile.ii_baseline,
        ii_constrained: profile.ii_constrained,
    }
}

/// Run the Fig. 8 sweep for one `(dim, page_size)` sub-figure through an
/// explicit engine and cache.
pub fn run_config_with(
    engine: &Engine,
    cache: &MapCache,
    dim: u16,
    page_size: usize,
) -> Vec<Fig8Point> {
    let kernels = cgra_dfg::kernels::all();
    engine.run(&kernels, |k| point(cache, dim, page_size, k))
}

/// Run the Fig. 8 sweep for one `(dim, page_size)` sub-figure with
/// default parallelism and a private in-memory cache.
pub fn run_config(dim: u16, page_size: usize) -> Vec<Fig8Point> {
    run_config_with(&Engine::default(), &MapCache::in_memory(), dim, page_size)
}

/// Ablation: the strict 1-step discipline (Algorithm 1's input form)
/// against the default stable-column discipline, on one fabric. Returns
/// `(kernel, ii_stable, Option<ii_strict>)` — `None` when the kernel does
/// not fit under strict rules. The stable II comes from the cache; the
/// strict mapping is ablation-only and always computed fresh.
pub fn strict_ablation_with(
    engine: &Engine,
    cache: &MapCache,
    dim: u16,
    page_size: usize,
) -> Vec<(String, u32, Option<u32>)> {
    let fabric = cgra(dim, page_size);
    let opts = MapOptions::default();
    let kernels = cgra_dfg::kernels::all();
    engine.run(&kernels, |k| {
        let stable = cache.profile(k, &fabric, &opts).ii_constrained;
        let strict = map_constrained_strict(k, &fabric, &opts).ok();
        (k.name.clone(), stable, strict.map(|r| r.ii()))
    })
}

/// [`strict_ablation_with`] with default parallelism and a private cache.
pub fn strict_ablation(dim: u16, page_size: usize) -> Vec<(String, u32, Option<u32>)> {
    strict_ablation_with(&Engine::default(), &MapCache::in_memory(), dim, page_size)
}

/// Run the complete Fig. 8 grid (all sub-figures) through an explicit
/// engine and cache, flattened to `(dim, page_size, kernel)` points so
/// every mapping is an independently scheduled unit of work.
pub fn run_all_with(engine: &Engine, cache: &MapCache) -> Vec<Fig8Point> {
    let kernels = cgra_dfg::kernels::all();
    let mut points: Vec<(u16, usize, &cgra_dfg::Dfg)> = Vec::new();
    for &(dim, sizes) in &crate::GRID {
        for &s in sizes {
            for k in &kernels {
                points.push((dim, s, k));
            }
        }
    }
    engine.run(&points, |&(dim, s, k)| point(cache, dim, s, k))
}

/// Run the complete Fig. 8 grid with default parallelism and a private
/// in-memory cache.
pub fn run_all() -> Vec<Fig8Point> {
    run_all_with(&Engine::default(), &MapCache::in_memory())
}

/// Geometric-mean performance per `(dim, page_size)` — the summary rows
/// EXPERIMENTS.md tracks.
pub fn summary(points: &[Fig8Point]) -> Vec<(u16, usize, f64)> {
    let mut keys: Vec<(u16, usize)> = points.iter().map(|p| (p.dim, p.page_size)).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter()
        .map(|(dim, s)| {
            let perf: Vec<f64> = points
                .iter()
                .filter(|p| p.dim == dim && p.page_size == s)
                .map(|p| p.performance_pct())
                .collect();
            let gm = (perf.iter().map(|x| x.ln()).sum::<f64>() / perf.len() as f64).exp();
            (dim, s, gm)
        })
        .collect()
}

/// Render one sub-figure as a table (kernels × performance%).
pub fn render(points: &[Fig8Point], dim: u16) -> String {
    let sizes: Vec<usize> = {
        let mut v: Vec<usize> = points
            .iter()
            .filter(|p| p.dim == dim)
            .map(|p| p.page_size)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut headers = vec!["kernel".to_string()];
    for s in &sizes {
        headers.push(format!("page {s} perf%"));
        headers.push(format!("II {s} (b/c)"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for name in cgra_dfg::kernels::NAMES {
        let mut row = vec![name.to_string()];
        for &s in &sizes {
            if let Some(p) = points
                .iter()
                .find(|p| p.dim == dim && p.page_size == s && p.kernel == name)
            {
                row.push(format!("{:.0}", p.performance_pct()));
                row.push(format!("{}/{}", p.ii_baseline, p.ii_constrained));
            } else {
                row.push("-".into());
                row.push("-".into());
            }
        }
        rows.push(row);
    }
    crate::table::markdown(&header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_4x4_page4_shape() {
        let points = run_config(4, 4);
        assert_eq!(points.len(), 11);
        for p in &points {
            assert!(p.ii_constrained >= p.ii_baseline, "{}", p.kernel);
            assert!(p.performance_pct() <= 100.0 + 1e-9);
            assert!(p.performance_pct() >= 25.0, "{} too degraded", p.kernel);
        }
    }

    #[test]
    fn larger_pages_do_not_hurt() {
        // Page size 8 on the 4x4 (2 pages) should be nearly lossless.
        let p8 = run_config(4, 8);
        let gm = summary(&p8)[0].2;
        assert!(gm > 85.0, "geomean {gm:.1}% at page size 8");
    }

    #[test]
    fn render_contains_all_kernels() {
        let points = run_config(4, 4);
        let s = render(&points, 4);
        for name in cgra_dfg::kernels::NAMES {
            assert!(s.contains(name));
        }
    }

    #[test]
    fn serial_and_parallel_runs_agree() {
        let cache = MapCache::in_memory();
        let serial = run_config_with(&Engine::with_jobs(1), &cache, 4, 2);
        let parallel = run_config_with(&Engine::with_jobs(4), &cache, 4, 2);
        assert_eq!(serial, parallel);
    }
}
