//! `cgra-lint` — run the whole-pipeline static analyzer over every
//! kernel and every artifact the compilation pipeline produces.
//!
//! For each `(fabric, kernel)` pair the linter rebuilds the full
//! pipeline — baseline mapping, ring-constrained mapping, extracted
//! page-level schedule, every halving-chain shrink plan, a one-dead-page
//! degradation, and the assembled kernel profile — and hands each
//! artifact to `cgra-analyze`. Every artifact yields one labeled
//! [`Report`]; an error diagnostic anywhere is a pipeline bug (or a
//! genuinely unmappable kernel, which the mapper reports separately).
//!
//! Used by the `cgra-lint` binary and the `analyze-smoke` CI job; the
//! figure binaries run the same passes under `--analyze`.

use cgra_analyze::{
    analyze_degraded, analyze_mapping, analyze_paged, analyze_plan, analyze_profile, Report,
};
use cgra_arch::{CgraConfig, FaultMap, PageHealth};
use cgra_core::transform::{transform, Strategy};
use cgra_core::{transform_degraded, PagedSchedule};
use cgra_mapper::{map_baseline, map_constrained, MapOptions};
use cgra_sim::halving_chain;

/// One analyzed artifact: where it came from and what the analyzer said.
pub struct LintFinding {
    /// `dim`, `page_size` of the fabric.
    pub config: (u16, usize),
    /// Kernel name.
    pub kernel: String,
    /// Which pipeline artifact was analyzed (`baseline-mapping`,
    /// `constrained-mapping`, `paged-schedule`, `plan-m2`, …).
    pub artifact: String,
    /// The analyzer's report.
    pub report: Report,
}

/// Lint every kernel on one fabric. Kernels the mapper itself cannot
/// place are skipped (the mapper's error is its own diagnostic channel);
/// everything the pipeline *did* produce must analyze clean.
pub fn lint_config(dim: u16, page_size: usize) -> Vec<LintFinding> {
    let cgra = CgraConfig::square(dim)
        .with_page_size(page_size)
        .unwrap_or_else(|e| panic!("{dim}x{dim} page {page_size}: {e}"));
    let opts = MapOptions::default();
    let n = cgra.layout().num_pages() as u16;
    let mut out = Vec::new();
    let mut push = |kernel: &str, artifact: &str, report: Report| {
        out.push(LintFinding {
            config: (dim, page_size),
            kernel: kernel.to_string(),
            artifact: artifact.to_string(),
            report,
        });
    };

    for dfg in cgra_dfg::kernels::all() {
        let name = dfg.name.clone();

        let Ok(base) = map_baseline(&dfg, &cgra, &opts) else {
            continue;
        };
        push(
            &name,
            "baseline-mapping",
            analyze_mapping(&base.mdfg, &cgra, &base.mapping, base.mode),
        );

        let Ok(cons) = map_constrained(&dfg, &cgra, &opts) else {
            continue;
        };
        push(
            &name,
            "constrained-mapping",
            analyze_mapping(&cons.mdfg, &cgra, &cons.mapping, cons.mode),
        );

        let Ok(paged) = PagedSchedule::from_mapping(&cons, &cgra) else {
            continue;
        };
        let paged = paged.trimmed();
        push(
            &name,
            "paged-schedule",
            analyze_paged(&paged, cgra.rf().size()),
        );

        let used = paged.num_pages;
        let mut ii_by_pages = Vec::new();
        let mut transforms_ok = true;
        for m in halving_chain(n) {
            if m >= used {
                ii_by_pages.push((m, cons.ii()));
                continue;
            }
            match transform(&paged, m, Strategy::Auto) {
                Ok(plan) => {
                    push(&name, &format!("plan-m{m}"), analyze_plan(&paged, &plan));
                    ii_by_pages.push((m, plan.ii_q_ceil()));
                }
                Err(_) => {
                    transforms_ok = false;
                    break;
                }
            }
        }
        if transforms_ok {
            push(
                &name,
                "profile",
                analyze_profile(&name, base.ii(), cons.ii(), used, &ii_by_pages, n),
            );
        }

        // One dead page at the far end of the schedule's footprint: the
        // canonical survivable degradation.
        if used >= 2 {
            let mut faults = FaultMap::new(used);
            faults.mark_page(0, PageHealth::Dead);
            if let Ok(d) = transform_degraded(&paged, &faults, used, Strategy::Auto) {
                push(
                    &name,
                    "degraded-dead0",
                    analyze_degraded(&paged, &d, &faults),
                );
            }
        }
    }
    out
}

/// Lint one or all grid configurations; `grid = false` lints only
/// `(dim, page_size)`.
pub fn lint(dim: u16, page_size: usize, grid: bool) -> Vec<LintFinding> {
    if grid {
        crate::GRID
            .iter()
            .flat_map(|&(d, sizes)| sizes.iter().map(move |&s| (d, s)))
            .flat_map(|(d, s)| lint_config(d, s))
            .collect()
    } else {
        lint_config(dim, page_size)
    }
}

/// Render findings for humans: every non-clean artifact in full, then a
/// one-line summary. Returns `(text, error_count)`.
pub fn render(findings: &[LintFinding]) -> (String, usize) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut errors = 0;
    let mut warnings = 0;
    for f in findings {
        if f.report.is_clean() {
            continue;
        }
        if f.report.has_errors() {
            errors += 1;
        } else {
            warnings += 1;
        }
        let (dim, page) = f.config;
        let _ = writeln!(
            out,
            "{dim}x{dim} page {page} {} [{}]:",
            f.kernel, f.artifact
        );
        for line in f.report.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    let _ = writeln!(
        out,
        "{} artifacts analyzed: {} clean, {warnings} with warnings, {errors} with errors",
        findings.len(),
        findings.len() - warnings - errors,
    );
    (out, errors)
}

/// Render findings as one JSON document.
pub fn render_json(findings: &[LintFinding]) -> String {
    use crate::jsonio::Json;
    let arr = findings
        .iter()
        .map(|f| {
            Json::obj([
                ("dim", Json::Int(i64::from(f.config.0))),
                ("page_size", Json::Int(f.config.1 as i64)),
                ("kernel", Json::Str(f.kernel.clone())),
                ("artifact", Json::Str(f.artifact.clone())),
                ("report", f.report.to_json()),
            ])
        })
        .collect();
    Json::Arr(arr).pretty()
}

/// The `--analyze` hook for the figure binaries: lint the full grid,
/// print the human rendering to **stderr** (stdout stays
/// byte-deterministic), and report whether any artifact had errors.
pub fn analyze_grid_to_stderr() -> bool {
    let findings = lint(4, 4, true);
    let (text, errors) = render(&findings);
    eprint!("analyze: {text}");
    errors > 0
}
