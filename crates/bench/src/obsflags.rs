//! `--trace` / `--metrics` flag handling shared by the figure binaries.
//!
//! Observability is strictly opt-in: with neither flag the binaries get
//! a [`Tracer::off`] and their stdout stays byte-identical to a build
//! without this module. With `--trace <path>` every event is appended to
//! `<path>` as one JSON object per line (a trace the `trace_oracle`
//! binary can replay); with `--metrics` events are folded into counters
//! and histograms printed to stdout after the sweep. Both flags may be
//! combined — the tracer tees into both sinks.

use cgra_obs::{JsonlSink, MetricsSink, TraceSink, Tracer};
use std::sync::Arc;

/// Parsed observability flags plus the live sinks behind the tracer.
#[derive(Debug)]
pub struct ObsFlags {
    /// Hand this to the traced sweep entry points (and to
    /// [`MapCache::traced`](crate::mapcache::MapCache::traced)). Off when
    /// neither flag was passed.
    pub tracer: Tracer,
    metrics: Option<Arc<MetricsSink>>,
}

impl ObsFlags {
    /// Parse `--trace <path>` and `--metrics` out of `args`.
    ///
    /// Exits with status 2 (usage error) when `--trace` lacks a path or
    /// the file cannot be created.
    pub fn from_args(args: &[String]) -> Self {
        let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
        let mut metrics = None;
        if let Some(i) = args.iter().position(|a| a == "--trace") {
            let path = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--trace requires a path, e.g. --trace run.jsonl");
                std::process::exit(2);
            });
            let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("--trace {path}: {e}");
                std::process::exit(2);
            });
            sinks.push(Arc::new(sink));
        }
        if args.iter().any(|a| a == "--metrics") {
            let sink = Arc::new(MetricsSink::new());
            metrics = Some(sink.clone());
            sinks.push(sink);
        }
        ObsFlags {
            tracer: Tracer::tee(sinks),
            metrics,
        }
    }

    /// Flush the trace file and, when `--metrics` was passed, print the
    /// folded metrics to stdout. Call once, before every process exit
    /// (including error exits — `std::process::exit` skips destructors,
    /// so the trace file's buffered tail would otherwise be lost).
    pub fn finish(&self) {
        self.tracer.flush();
        if let Some(m) = &self.metrics {
            println!("## Metrics\n");
            print!("{}", m.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_flags_is_off() {
        let obs = ObsFlags::from_args(&args(&["--smoke", "-j", "2"]));
        assert!(!obs.tracer.is_on());
        assert!(obs.metrics.is_none());
    }

    #[test]
    fn metrics_flag_enables_tracer() {
        let obs = ObsFlags::from_args(&args(&["--metrics"]));
        assert!(obs.tracer.is_on());
        assert!(obs.metrics.is_some());
    }

    #[test]
    fn trace_flag_writes_jsonl() {
        let path = std::env::temp_dir().join(format!("obsflags-test-{}.jsonl", std::process::id()));
        let obs = ObsFlags::from_args(&args(&["--trace", path.to_str().unwrap()]));
        assert!(obs.tracer.is_on());
        obs.tracer.emit(|| cgra_obs::TraceEvent::SimBegin {
            threads: 1,
            pages: 4,
        });
        obs.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(cgra_obs::TraceEvent::parse_jsonl(&text).unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
